// Command eotx computes the routing metrics of Chapter 5 for a topology:
// per-node ETX and EOTX distances to a destination, the forwarding plan
// (Algorithm 1 transmission counts and Eq. 3.3 credits), and the
// ETX-vs-EOTX cost gap.
//
//	eotx -topo testbed -dst 0
//	eotx -topo gap -k 8 -p 0.05 -src 0
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/routing"
)

func main() {
	var (
		topoName = flag.String("topo", "testbed", "topology: testbed, chain, diamond, gap, corridor")
		dst      = flag.Int("dst", 0, "destination node")
		src      = flag.Int("src", -1, "source node for plan + gap output (-1: metrics only)")
		k        = flag.Int("k", 8, "gap topology branch count")
		p        = flag.Float64("p", 0.1, "gap topology link delivery probability")
		nodes    = flag.Int("nodes", 6, "node count for chain/corridor")
		seed     = flag.Int64("seed", 1, "generator seed")
		verify   = flag.Bool("verify", false, "Monte-Carlo-validate the EOTX metric (Prop. 4)")
		trials   = flag.Int("trials", 20000, "Monte Carlo trials for -verify")
	)
	flag.Parse()

	var topo *graph.Topology
	switch *topoName {
	case "testbed":
		topo = experiments.TestbedTopology()
	case "chain":
		topo = graph.LossyChain(*nodes, 15, 30)
	case "diamond":
		topo = graph.Diamond()
	case "gap":
		topo = graph.GapTopology(*k, *p)
		if *src < 0 {
			*src = 0
		}
		*dst = 3 + *k
	case "corridor":
		topo = graph.Corridor(*nodes, float64(*nodes)*26, 15, 28, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	d := graph.NodeID(*dst)
	etx := routing.ETXToDestination(topo, d, routing.ETXOptions{Threshold: 0, AckAware: false})
	eotx := routing.EOTX(topo, d, routing.DefaultEOTXOptions())

	fmt.Printf("metrics toward node %d:\n", d)
	fmt.Printf("%-6s %10s %10s %10s\n", "node", "ETX", "EOTX", "savings")
	for i := 0; i < topo.N(); i++ {
		sv := "-"
		if !math.IsInf(etx.Dist[i], 1) && eotx[i] > 0 {
			sv = fmt.Sprintf("%.1f%%", 100*(1-eotx[i]/etx.Dist[i]))
		}
		fmt.Printf("%-6d %10.3f %10.3f %10s\n", i, etx.Dist[i], eotx[i], sv)
	}

	if *src >= 0 {
		s := graph.NodeID(*src)
		fmt.Printf("\nforwarding plan %d -> %d:\n", s, d)
		for _, m := range []routing.OrderMetric{routing.OrderETX, routing.OrderEOTX} {
			opt := routing.PlanOptions{
				Metric: m,
				ETX:    routing.ETXOptions{Threshold: 0, AckAware: false},
				EOTX:   routing.DefaultEOTXOptions(),
			}
			plan, err := routing.BuildPlan(topo, s, d, opt)
			if err != nil {
				fmt.Printf("  %s order: %v\n", m, err)
				continue
			}
			fmt.Printf("  %s order: cost %.3f, forwarders %v\n", m, plan.TotalCost, plan.Forwarders())
			for _, id := range plan.Participants() {
				fmt.Printf("    node %-3d z=%-8.3f credit=%.3f\n", id, plan.Z[id], plan.Credit[id])
			}
		}
		gap, err := routing.CostGap(topo, s, d,
			routing.ETXOptions{Threshold: 0, AckAware: false}, routing.DefaultEOTXOptions())
		if err == nil {
			fmt.Printf("  ETX-order / EOTX-order cost gap: %.3fx\n", gap)
		}
		if *verify {
			emp, err := routing.SimulateOpportunistic(topo, s, d, eotx, *trials, 99)
			if err != nil {
				fmt.Printf("  Monte Carlo: %v\n", err)
			} else {
				fmt.Printf("  Monte Carlo (%d trials of the §5.4 forwarding rule): %.3f tx/pkt vs EOTX %.3f (%+.1f%%)\n",
					*trials, emp, eotx[s], 100*(emp/eotx[s]-1))
			}
		}
	}

}
