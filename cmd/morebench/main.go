// Command morebench regenerates every table and figure of the thesis'
// evaluation over the simulated testbed. Run it with no arguments for the
// full suite at a moderate scale, or select individual experiments:
//
//	morebench -fig 4.2 -pairs 200 -file 5242880   # paper-scale Fig 4-2
//	morebench -fig 4.7                            # batch-size sweep
//	morebench -table 4.1                          # coding microbenchmarks
//	morebench -fig 5.1                            # unbounded cost gap
//	morebench -table 5.7                          # ETX vs EOTX on the testbed
//	morebench -table overhead                     # MORE header overhead
//
// The figure drivers fan their independent simulation runs out over
// -parallel workers (default: all CPUs); results are byte-identical for any
// worker count, so -parallel only changes wall-clock time.
//
// Output is plain text: one summary table per experiment plus TSV series
// (CDF points) when -tsv is set. With -json the raw result structs are
// emitted as one JSON document instead — one entry per experiment with its
// wall-clock seconds — so successive PRs can track the perf trajectory
// mechanically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/gf256"
	"repro/internal/stats"
)

// parseCores expands the -cores argument: a bare integer N becomes the
// doubling sweep 1,2,4,…,N (N included), a comma-separated list is taken
// as-is.
func parseCores(s string) ([]int, error) {
	var counts []int
	if !strings.Contains(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cores: want a positive count or comma-separated list, got %q", s)
		}
		for c := 1; c < n; c *= 2 {
			counts = append(counts, c)
		}
		return append(counts, n), nil
	}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cores: bad worker count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate (4.2, 4.3, 4.4, 4.5, 4.6, 4.7, 5.1); empty runs everything")
		table    = flag.String("table", "", "table to regenerate (4.1, 5.7, overhead)")
		pairs    = flag.Int("pairs", 40, "number of random source-destination pairs")
		file     = flag.Int("file", 512<<10, "transfer size in bytes (paper: 5242880)")
		seed     = flag.Int64("seed", 1, "experiment seed")
		tsv      = flag.Bool("tsv", false, "also print raw TSV series (CDF points, scatter)")
		runs     = flag.Int("runs", 10, "random runs per point for Fig 4-5 (paper: 40)")
		plotW    = flag.Int("plotw", 64, "ASCII plot width")
		parallel = flag.Int("parallel", experiments.AutoParallel(), "worker goroutines for the figure drivers (results are identical for any value)")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of text tables")
		gfKernel = flag.String("gf256", "", "pin the GF(256) kernel (auto, portable, reference, or a SIMD arm; see gf256.AvailableKernels)")
		cores    = flag.String("cores", "", "sharded coding-pipeline scaling sweep: a max worker count (doublings from 1) or a comma-separated list")
		baseline = flag.String("baseline", "", "write per-kernel GF(256) throughput grid to this JSON file (BENCH_gf256.json)")
		checkBl  = flag.String("check-baseline", "", "compare current GF(256) throughput against this baseline; exit 1 on >20% portable regression")
		blSecs   = flag.Float64("bench-secs", 0.25, "seconds per benchmark cell for -cores/-baseline/-check-baseline")
		telBase  = flag.String("telemetry-baseline", "", "measure telemetry overhead (off vs full hub) and write it to this JSON file (BENCH_telemetry.json)")
		telCheck = flag.String("check-telemetry-baseline", "", "compare telemetry overhead against this baseline; exit 1 if the off path regressed >20% or enabled overhead exceeds the 10% bound")
		telRuns  = flag.Int("telemetry-runs", 5, "repetitions per mode for the telemetry overhead benchmark (minimum wall clock wins)")
	)
	flag.Parse()

	if *gfKernel != "" {
		if err := gf256.SetKernel(*gfKernel); err != nil {
			fmt.Fprintf(os.Stderr, "-gf256: %v\n", err)
			os.Exit(2)
		}
	}

	opts := experiments.DefaultOptions()
	opts.FileBytes = *file
	opts.Seed = *seed
	opts.Parallel = *parallel

	type entry struct {
		Name    string      `json:"name"`
		Key     string      `json:"key"`
		Seconds float64     `json:"seconds"`
		Result  interface{} `json:"result"`
	}
	var report []entry

	all := *fig == "" && *table == "" && *cores == "" && *baseline == "" && *checkBl == "" &&
		*telBase == "" && *telCheck == ""
	ran := false
	// run executes one experiment; fn returns the raw result for -json and
	// a printer for the text tables.
	run := func(name string, want string, fn func() (interface{}, func())) {
		if !(all || *fig == want || *table == want) {
			return
		}
		start := time.Now()
		result, print := fn()
		elapsed := time.Since(start)
		if *jsonOut {
			report = append(report, entry{Name: name, Key: want, Seconds: elapsed.Seconds(), Result: result})
		} else {
			fmt.Printf("=== %s ===\n", name)
			print()
			fmt.Printf("[%.2fs]\n\n", elapsed.Seconds())
		}
		ran = true
	}

	topo := experiments.TestbedTopology()
	var fig42 *experiments.ThroughputResult

	run("Figure 4-2: unicast throughput CDF (MORE vs ExOR vs Srcr)", "4.2", func() (interface{}, func()) {
		fig42 = experiments.Fig42UnicastThroughput(topo, *pairs, opts)
		return fig42, func() {
			fmt.Print(fig42.Table())
			cdfs := fig42.CDFs()
			plot := map[rune]*stats.CDF{
				'S': cdfs[experiments.Srcr],
				'E': cdfs[experiments.ExOR],
				'M': cdfs[experiments.MORE],
			}
			xmax := stats.Summarize(fig42.Throughput[experiments.MORE]).Max
			fmt.Println("CDF (x: pkt/s, S=Srcr E=ExOR M=MORE):")
			fmt.Print(stats.AsciiPlot(plot, xmax, *plotW, 16))
			if *tsv {
				for _, pr := range []experiments.Protocol{experiments.Srcr, experiments.ExOR, experiments.MORE} {
					fmt.Printf("# CDF %v\n%s", pr, cdfs[pr].TSV())
				}
			}
		}
	})

	run("Figure 4-3: per-pair scatter (opportunistic vs Srcr)", "4.3", func() (interface{}, func()) {
		if fig42 == nil {
			fig42 = experiments.Fig42UnicastThroughput(topo, *pairs, opts)
		}
		bm, tm := fig42.ChallengedGain(experiments.MORE)
		be, te := fig42.ChallengedGain(experiments.ExOR)
		result := map[string]float64{
			"MORE-challenged-x": bm, "MORE-good-x": tm,
			"ExOR-challenged-x": be, "ExOR-good-x": te,
		}
		return result, func() {
			fmt.Printf("median gain over Srcr, challenged half vs good half:\n")
			fmt.Printf("  MORE: %.2fx vs %.2fx\n", bm, tm)
			fmt.Printf("  ExOR: %.2fx vs %.2fx\n", be, te)
			if *tsv {
				fmt.Print(fig42.ScatterTSV(experiments.Srcr, experiments.MORE))
				fmt.Print(fig42.ScatterTSV(experiments.Srcr, experiments.ExOR))
			}
		}
	})

	run("Figure 4-4: spatial reuse (>=4-hop flows, concurrent first/last hop)", "4.4", func() (interface{}, func()) {
		res := experiments.Fig44SpatialReuse(*pairs/4+3, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Figure 4-5: multiple flows", "4.5", func() (interface{}, func()) {
		o := opts
		if o.FileBytes > 256<<10 {
			o.FileBytes = 256 << 10 // congested runs are slow; cap per-flow size
		}
		res := experiments.Fig45MultiFlow(topo, 4, *runs, o)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Figure 4-6: Srcr autorate vs opportunistic routing at 11 Mb/s", "4.6", func() (interface{}, func()) {
		res := experiments.Fig46Autorate(topo, *pairs/2+4, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Figure 4-7: batch size sweep", "4.7", func() (interface{}, func()) {
		res := experiments.Fig47BatchSize(topo, []int{8, 16, 32, 64, 128}, *pairs/2+4, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Table 4.1: computational cost of packet operations (K=32, 1500 B)", "4.1", func() (interface{}, func()) {
		res := experiments.Table41CodingCost(32, 1500, 2000)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Header overhead (§4.6)", "overhead", func() (interface{}, func()) {
		res := experiments.HeaderOverhead(32, 1500)
		return res, func() {
			fmt.Printf("MORE header: %d bytes with K=32 and %d forwarders (%.1f%% of a %d B packet)\n",
				res.HeaderBytes, 10, 100*res.Fraction, res.PktBytes)
		}
	})

	run("Figure 5-1 / Prop. 6: unbounded ETX-vs-EOTX cost gap", "5.1", func() (interface{}, func()) {
		result := map[int][]experiments.GapPoint{}
		for _, k := range []int{2, 4, 8, 16} {
			result[k] = experiments.Fig51CostGap(k, []float64{0.3, 0.1, 0.03, 0.01, 0.003})
		}
		return result, func() {
			for _, k := range []int{2, 4, 8, 16} {
				var parts []string
				for _, pt := range result[k] {
					parts = append(parts, fmt.Sprintf("p=%.3f:%.2fx", pt.P, pt.Gap))
				}
				fmt.Printf("k=%-3d %s\n", k, strings.Join(parts, "  "))
			}
		}
	})

	run("Robustness: Fig 4-2 gains across generated topologies", "robustness", func() (interface{}, func()) {
		res := experiments.Fig42AcrossSeeds(4, *pairs/4+4, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("§5.7: ETX vs EOTX forwarder order on the testbed", "5.7", func() (interface{}, func()) {
		res := experiments.Sec57EOTXvsETX(topo, *parallel)
		return res, func() { fmt.Print(res.Table()) }
	})

	benchDur := time.Duration(*blSecs * float64(time.Second))

	if *cores != "" {
		counts, err := parseCores(*cores)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		res := experiments.CodingScaling(counts, 32, 1500, benchDur)
		if *jsonOut {
			report = append(report, entry{Name: "sharded coding pipeline scaling", Key: "cores",
				Seconds: time.Since(start).Seconds(), Result: res})
		} else {
			fmt.Printf("=== Sharded coding pipeline scaling ===\n%s\n", res.Table())
		}
		ran = true
	}

	if *baseline != "" || *checkBl != "" {
		res := experiments.GF256Bench(gf256.AvailableKernels(), 32, experiments.GF256SizeClasses, benchDur)
		if !*jsonOut {
			fmt.Printf("=== GF(256) kernel throughput (K=32) ===\n%s\n", res.Table())
		}
		if *baseline != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err == nil {
				err = os.WriteFile(*baseline, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "-baseline: %v\n", err)
				os.Exit(1)
			}
		}
		if *checkBl != "" {
			data, err := os.ReadFile(*checkBl)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-check-baseline: %v\n", err)
				os.Exit(1)
			}
			var base experiments.GF256BenchResult
			if err := json.Unmarshal(data, &base); err != nil {
				fmt.Fprintf(os.Stderr, "-check-baseline: %v\n", err)
				os.Exit(1)
			}
			// Only the portable arm gates: it is the one arm every host
			// (and every CI runner) executes identically. SIMD cells are
			// reported but advisory, since baselines move between CPUs.
			bad := experiments.CompareGF256Baselines(&base, res, 0.20, []string{"portable"})
			if len(bad) > 0 {
				fmt.Fprintf(os.Stderr, "GF(256) throughput regressions beyond 20%%:\n")
				for _, m := range bad {
					fmt.Fprintf(os.Stderr, "  %s\n", m)
				}
				os.Exit(1)
			}
			fmt.Println("baseline check passed: no portable-kernel regression beyond 20%")
		}
		ran = true
	}

	if *telBase != "" || *telCheck != "" {
		res := experiments.TelemetryBench(*telRuns)
		if !*jsonOut {
			fmt.Printf("=== Telemetry overhead ===\n%s\n", res.Table())
		}
		if *telBase != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err == nil {
				err = os.WriteFile(*telBase, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "-telemetry-baseline: %v\n", err)
				os.Exit(1)
			}
		}
		if *telCheck != "" {
			data, err := os.ReadFile(*telCheck)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-check-telemetry-baseline: %v\n", err)
				os.Exit(1)
			}
			var base experiments.TelemetryBenchResult
			if err := json.Unmarshal(data, &base); err != nil {
				fmt.Fprintf(os.Stderr, "-check-telemetry-baseline: %v\n", err)
				os.Exit(1)
			}
			bad := experiments.CompareTelemetryBaselines(&base, res, 0.20)
			if len(bad) > 0 {
				fmt.Fprintf(os.Stderr, "telemetry overhead violations:\n")
				for _, m := range bad {
					fmt.Fprintf(os.Stderr, "  %s\n", m)
				}
				os.Exit(1)
			}
			fmt.Printf("telemetry overhead check passed: off within 20%% of baseline, on within %.0f%% of off\n",
				experiments.TelemetryOverheadLimitPct)
		}
		ran = true
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment: fig=%q table=%q\n", *fig, *table)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{
			"seed":     *seed,
			"pairs":    *pairs,
			"file":     *file,
			"parallel": *parallel,
			"results":  report,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
