// Command morebench regenerates every table and figure of the thesis'
// evaluation over the simulated testbed. Run it with no arguments for the
// full suite at a moderate scale, or select individual experiments:
//
//	morebench -fig 4.2 -pairs 200 -file 5242880   # paper-scale Fig 4-2
//	morebench -fig 4.7                            # batch-size sweep
//	morebench -table 4.1                          # coding microbenchmarks
//	morebench -fig 5.1                            # unbounded cost gap
//	morebench -table 5.7                          # ETX vs EOTX on the testbed
//	morebench -table overhead                     # MORE header overhead
//
// The figure drivers fan their independent simulation runs out over
// -parallel workers (default: all CPUs); results are byte-identical for any
// worker count, so -parallel only changes wall-clock time.
//
// Output is plain text: one summary table per experiment plus TSV series
// (CDF points) when -tsv is set. With -json the raw result structs are
// emitted as one JSON document instead — one entry per experiment with its
// wall-clock seconds — so successive PRs can track the perf trajectory
// mechanically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate (4.2, 4.3, 4.4, 4.5, 4.6, 4.7, 5.1); empty runs everything")
		table    = flag.String("table", "", "table to regenerate (4.1, 5.7, overhead)")
		pairs    = flag.Int("pairs", 40, "number of random source-destination pairs")
		file     = flag.Int("file", 512<<10, "transfer size in bytes (paper: 5242880)")
		seed     = flag.Int64("seed", 1, "experiment seed")
		tsv      = flag.Bool("tsv", false, "also print raw TSV series (CDF points, scatter)")
		runs     = flag.Int("runs", 10, "random runs per point for Fig 4-5 (paper: 40)")
		plotW    = flag.Int("plotw", 64, "ASCII plot width")
		parallel = flag.Int("parallel", experiments.AutoParallel(), "worker goroutines for the figure drivers (results are identical for any value)")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of text tables")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.FileBytes = *file
	opts.Seed = *seed
	opts.Parallel = *parallel

	type entry struct {
		Name    string      `json:"name"`
		Key     string      `json:"key"`
		Seconds float64     `json:"seconds"`
		Result  interface{} `json:"result"`
	}
	var report []entry

	all := *fig == "" && *table == ""
	ran := false
	// run executes one experiment; fn returns the raw result for -json and
	// a printer for the text tables.
	run := func(name string, want string, fn func() (interface{}, func())) {
		if !(all || *fig == want || *table == want) {
			return
		}
		start := time.Now()
		result, print := fn()
		elapsed := time.Since(start)
		if *jsonOut {
			report = append(report, entry{Name: name, Key: want, Seconds: elapsed.Seconds(), Result: result})
		} else {
			fmt.Printf("=== %s ===\n", name)
			print()
			fmt.Printf("[%.2fs]\n\n", elapsed.Seconds())
		}
		ran = true
	}

	topo := experiments.TestbedTopology()
	var fig42 *experiments.ThroughputResult

	run("Figure 4-2: unicast throughput CDF (MORE vs ExOR vs Srcr)", "4.2", func() (interface{}, func()) {
		fig42 = experiments.Fig42UnicastThroughput(topo, *pairs, opts)
		return fig42, func() {
			fmt.Print(fig42.Table())
			cdfs := fig42.CDFs()
			plot := map[rune]*stats.CDF{
				'S': cdfs[experiments.Srcr],
				'E': cdfs[experiments.ExOR],
				'M': cdfs[experiments.MORE],
			}
			xmax := stats.Summarize(fig42.Throughput[experiments.MORE]).Max
			fmt.Println("CDF (x: pkt/s, S=Srcr E=ExOR M=MORE):")
			fmt.Print(stats.AsciiPlot(plot, xmax, *plotW, 16))
			if *tsv {
				for _, pr := range []experiments.Protocol{experiments.Srcr, experiments.ExOR, experiments.MORE} {
					fmt.Printf("# CDF %v\n%s", pr, cdfs[pr].TSV())
				}
			}
		}
	})

	run("Figure 4-3: per-pair scatter (opportunistic vs Srcr)", "4.3", func() (interface{}, func()) {
		if fig42 == nil {
			fig42 = experiments.Fig42UnicastThroughput(topo, *pairs, opts)
		}
		bm, tm := fig42.ChallengedGain(experiments.MORE)
		be, te := fig42.ChallengedGain(experiments.ExOR)
		result := map[string]float64{
			"MORE-challenged-x": bm, "MORE-good-x": tm,
			"ExOR-challenged-x": be, "ExOR-good-x": te,
		}
		return result, func() {
			fmt.Printf("median gain over Srcr, challenged half vs good half:\n")
			fmt.Printf("  MORE: %.2fx vs %.2fx\n", bm, tm)
			fmt.Printf("  ExOR: %.2fx vs %.2fx\n", be, te)
			if *tsv {
				fmt.Print(fig42.ScatterTSV(experiments.Srcr, experiments.MORE))
				fmt.Print(fig42.ScatterTSV(experiments.Srcr, experiments.ExOR))
			}
		}
	})

	run("Figure 4-4: spatial reuse (>=4-hop flows, concurrent first/last hop)", "4.4", func() (interface{}, func()) {
		res := experiments.Fig44SpatialReuse(*pairs/4+3, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Figure 4-5: multiple flows", "4.5", func() (interface{}, func()) {
		o := opts
		if o.FileBytes > 256<<10 {
			o.FileBytes = 256 << 10 // congested runs are slow; cap per-flow size
		}
		res := experiments.Fig45MultiFlow(topo, 4, *runs, o)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Figure 4-6: Srcr autorate vs opportunistic routing at 11 Mb/s", "4.6", func() (interface{}, func()) {
		res := experiments.Fig46Autorate(topo, *pairs/2+4, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Figure 4-7: batch size sweep", "4.7", func() (interface{}, func()) {
		res := experiments.Fig47BatchSize(topo, []int{8, 16, 32, 64, 128}, *pairs/2+4, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Table 4.1: computational cost of packet operations (K=32, 1500 B)", "4.1", func() (interface{}, func()) {
		res := experiments.Table41CodingCost(32, 1500, 2000)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("Header overhead (§4.6)", "overhead", func() (interface{}, func()) {
		res := experiments.HeaderOverhead(32, 1500)
		return res, func() {
			fmt.Printf("MORE header: %d bytes with K=32 and %d forwarders (%.1f%% of a %d B packet)\n",
				res.HeaderBytes, 10, 100*res.Fraction, res.PktBytes)
		}
	})

	run("Figure 5-1 / Prop. 6: unbounded ETX-vs-EOTX cost gap", "5.1", func() (interface{}, func()) {
		result := map[int][]experiments.GapPoint{}
		for _, k := range []int{2, 4, 8, 16} {
			result[k] = experiments.Fig51CostGap(k, []float64{0.3, 0.1, 0.03, 0.01, 0.003})
		}
		return result, func() {
			for _, k := range []int{2, 4, 8, 16} {
				var parts []string
				for _, pt := range result[k] {
					parts = append(parts, fmt.Sprintf("p=%.3f:%.2fx", pt.P, pt.Gap))
				}
				fmt.Printf("k=%-3d %s\n", k, strings.Join(parts, "  "))
			}
		}
	})

	run("Robustness: Fig 4-2 gains across generated topologies", "robustness", func() (interface{}, func()) {
		res := experiments.Fig42AcrossSeeds(4, *pairs/4+4, opts)
		return res, func() { fmt.Print(res.Table()) }
	})

	run("§5.7: ETX vs EOTX forwarder order on the testbed", "5.7", func() (interface{}, func()) {
		res := experiments.Sec57EOTXvsETX(topo, *parallel)
		return res, func() { fmt.Print(res.Table()) }
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment: fig=%q table=%q\n", *fig, *table)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{
			"seed":     *seed,
			"pairs":    *pairs,
			"file":     *file,
			"parallel": *parallel,
			"results":  report,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
