// Command moresim runs file transfers over a chosen topology and protocol
// and reports the results — the quick way to poke at the system.
//
//	moresim -proto more -topo testbed -src 3 -dst 17 -file 786432
//	moresim -proto exor -topo chain -nodes 6
//	moresim -proto srcr -topo diamond -verbose
//	moresim -proto all -parallel 4               # compare all four protocols
//
// Declarative scenarios replace flag combinations with one versionable
// file (topology + flows + knobs + event schedule; see scenarios/):
//
//	moresim -scenario scenarios/push-choke.json
//	moresim -scenario scenarios/paper-testbed.json -json   # byte-identical across runs
//
// Large-topology scenarios run over the sparse random-geometric generator:
//
//	moresim -topo geometric -nodes 1000 -flows 4 -drop 0.1
//	moresim -topo geometric -scale 125,250,500,1000 -flows 2 -json
//
// The telemetry plane rides on any single run (flag combination or
// scenario): -metrics writes latency percentiles and per-node counters,
// -trace-out a Chrome-trace-event file, -deadline-ms arms the per-packet
// miss rate, -progress a stderr heartbeat. Stall post-mortems print to
// stderr the moment a repair watchdog fires:
//
//	moresim -proto more -metrics metrics.json -trace-out trace.json
//	moresim -scenario scenarios/paper-testbed.json -metrics - -deadline-ms 500
//	moresim -topo geometric -nodes 500 -progress 5
//
// With -scale the node counts are swept (fanned over -parallel workers) and
// a throughput/tx-per-packet/wall-clock table — or JSON with -json — is
// printed. With -proto all the four protocols run over the same pair on
// -parallel worker goroutines (each in its own simulator; per-protocol
// results are identical to serial runs) and a comparison table is printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/congest"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/gf256"
	"repro/internal/graph"
	"repro/internal/linkstate"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		protoName = flag.String("proto", "more", "protocol: more, exor, srcr, srcr-auto, or all (comparison)")
		parallel  = flag.Int("parallel", experiments.AutoParallel(), "worker goroutines for -proto all and -scale")
		topoName  = flag.String("topo", "testbed", "topology: testbed, chain, diamond, corridor, grid, geometric")
		nodes     = flag.Int("nodes", 6, "node count for chain/corridor/geometric topologies")
		flows     = flag.Int("flows", 1, "concurrent flows (geometric and matrix topologies)")
		drop      = flag.Float64("drop", 0, "uniform extra drop rate layered over every link (0..1)")
		degree    = flag.Int("degree", 10, "target mean neighbor degree for geometric topologies")
		floors    = flag.Int("floors", 1, "building floors for geometric topologies")
		scaleList = flag.String("scale", "", "comma-separated node counts: sweep the geometric scaling driver")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON (scale sweeps and flow runs)")
		src       = flag.Int("src", -1, "source node (default: topology-specific)")
		dst       = flag.Int("dst", -1, "destination node (default: topology-specific)")
		fileBytes = flag.Int("file", 512<<10, "transfer size in bytes")
		batch     = flag.Int("k", 32, "batch size K for MORE/ExOR")
		seed      = flag.Int64("seed", 1, "simulation seed")
		metric    = flag.String("metric", "etx", "forwarder ordering: etx or eotx")
		stateName = flag.String("state", "oracle", "routing state: oracle (global ground truth) or learned (in-sim probes + LSA floods; also runs the oracle side and reports the gap)")
		warmup    = flag.Float64("warmup", 30, "learned-state measurement warmup before flows start (seconds; 0 starts flows cold)")
		window    = flag.Int("window", 10, "learned-state probe window (probes per estimate, > 0)")
		advertise = flag.Float64("advertise", 5, "learned-state LSA advertise interval (seconds, > 0)")
		damp      = flag.Float64("damp", 0, "learned-state LSA flood damping trigger: advertise only when an estimate moved this much (0 disables; try 0.2)")
		scopeList = flag.String("scope-rings", "", "learned-state fisheye scope rings: comma-separated ascending hop radii (e.g. 2,8); near rings get every update, the rest wait for summaries (empty disables scoping)")
		summaryS  = flag.Float64("summary-interval", 0, "learned-state network-wide summary flood period with -scope-rings, seconds (0: 8x advertise interval)")
		piggyback = flag.Bool("piggyback", false, "learned-state: ride pending LSAs on outgoing broadcast data frames instead of dedicated floods")
		ccName    = flag.String("cc", "none", "congestion control: none, tail, choke, credit, aimd, or cubic")
		ccQueue   = flag.Int("cc-queue", 0, "congestion-layer transmit queue bound (0: policy default)")
		loadPen   = flag.Float64("load-penalty", 0, "load-aware routing: ETX penalty of a fully saturated forwarder (0 disables; try 2)")
		ccSweep   = flag.Bool("cc-sweep", false, "with -scale: run every congestion policy over the same topologies and print the mitigation table")
		verbose   = flag.Bool("verbose", false, "print the forwarding plan")
		showTrace = flag.Bool("trace", false, "print a per-node medium activity timeline")
		scenFile  = flag.String("scenario", "", "run a declarative scenario spec file (scenarios/*.json); only -json and the telemetry flags combine with it")
		gfKernel  = flag.String("gf256", "", "pin the GF(256) kernel (auto, portable, reference, or a SIMD arm); coded bytes are identical under every kernel")

		metricsOut = flag.String("metrics", "", "write the telemetry metrics report (per-packet latency percentiles, per-node counters, stall count) as JSON to this file (\"-\" for stdout)")
		traceOut   = flag.String("trace-out", "", "write a Chrome-trace-event JSON file of every telemetry event (load in Perfetto or chrome://tracing)")
		deadlineMS = flag.Float64("deadline-ms", 0, "per-packet delivery deadline for the telemetry miss rate, in milliseconds (0 disables)")
		simLimit   = flag.Float64("sim-deadline", 0, "simulated transfer deadline in seconds, measured from flow start (0: the 3600 s default); bounds slow learned-state runs at scale")
		progress   = flag.Float64("progress", 0, "print a progress heartbeat (events seen, simulated clock) to stderr every N wall-clock seconds (0 disables)")
	)
	flag.Parse()

	tc := telemetryCLI{metrics: *metricsOut, trace: *traceOut, deadlineMS: *deadlineMS, progressS: *progress}

	if *gfKernel != "" {
		if err := gf256.SetKernel(*gfKernel); err != nil {
			fmt.Fprintf(os.Stderr, "-gf256: %v\n", err)
			os.Exit(2)
		}
	}

	if *scenFile != "" {
		if !runScenario(*scenFile, *jsonOut, tc) {
			os.Exit(1)
		}
		return
	}

	opts := experiments.DefaultOptions()
	opts.FileBytes = *fileBytes
	opts.BatchSize = *batch
	opts.Seed = *seed
	opts.Parallel = *parallel
	if *simLimit < 0 {
		fmt.Fprintln(os.Stderr, "-sim-deadline must be >= 0")
		os.Exit(2)
	}
	if *simLimit > 0 {
		opts.Deadline = sim.Time(*simLimit * float64(sim.Second))
	}
	if *metric == "eotx" {
		opts.Metric = routing.OrderEOTX
	}
	state, err := experiments.ParseStateMode(*stateName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ccPolicy, err := congest.ParsePolicy(*ccName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts.CC = congest.DefaultConfig(ccPolicy)
	opts.CC.QueueLen = *ccQueue
	if *loadPen < 0 {
		fmt.Fprintln(os.Stderr, "-load-penalty must be >= 0")
		os.Exit(2)
	}
	opts.LoadPenalty = *loadPen
	if state == experiments.StateLearned {
		// linkstate.NewAgent treats a zero AdvertiseInterval as "use all
		// defaults", which would silently discard -window too; reject the
		// degenerate knobs here instead.
		if *window <= 0 || *advertise <= 0 {
			fmt.Fprintln(os.Stderr, "-window and -advertise must be > 0")
			os.Exit(2)
		}
		if *warmup > 0 {
			opts.Warmup = sim.Time(*warmup * float64(sim.Second))
		} else {
			opts.Warmup = -1 // explicit cold start (0 would mean "default 30 s")
		}
		lcfg := linkstate.DefaultConfig()
		lcfg.Probe.Window = *window
		lcfg.AdvertiseInterval = sim.Time(*advertise * float64(sim.Second))
		lcfg.TriggerDelta = *damp
		if *scopeList != "" {
			rings, ok := parseRings(*scopeList)
			if !ok {
				os.Exit(2)
			}
			lcfg.ScopeRings = rings
		}
		if *summaryS < 0 {
			fmt.Fprintln(os.Stderr, "-summary-interval must be >= 0")
			os.Exit(2)
		}
		lcfg.SummaryInterval = sim.Time(*summaryS * float64(sim.Second))
		lcfg.Piggyback = *piggyback
		opts.LinkState = lcfg
	}

	gcfg := graph.DefaultGeometric(*nodes)
	gcfg.TargetDegree = float64(*degree)
	gcfg.Floors = *floors

	var proto experiments.Protocol
	switch *protoName {
	case "all":
		// Handled after the verbose plan dump below.
	case "more":
		proto = experiments.MORE
	case "exor":
		proto = experiments.ExOR
	case "srcr":
		proto = experiments.Srcr
	case "srcr-auto":
		proto = experiments.SrcrAutorate
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		os.Exit(2)
	}
	if proto == experiments.SrcrAutorate {
		opts.RateDependentChannel = true
	}

	if *scaleList != "" {
		if *protoName == "all" {
			fmt.Fprintln(os.Stderr, "-scale needs a single protocol (default: more)")
			os.Exit(2)
		}
		if tc.active() {
			fmt.Fprintln(os.Stderr, "-metrics/-trace-out/-deadline-ms/-progress need a single simulation run, not a -scale sweep")
			os.Exit(2)
		}
		if state == experiments.StateLearned {
			// Each point runs the whole measurement plane in-sim: probes,
			// scoped LSA floods, per-node learned routing.
			opts.State = experiments.StateLearned
			if *ccSweep {
				fmt.Fprintln(os.Stderr, "-cc-sweep runs the oracle control plane; drop -state learned")
				os.Exit(2)
			}
		}
		if *ccSweep {
			if !runCCSweep(*scaleList, *flows, *drop, gcfg, proto, opts, *jsonOut) {
				os.Exit(1)
			}
			return
		}
		if !runScale(*scaleList, *flows, *drop, gcfg, proto, opts, *jsonOut) {
			os.Exit(1)
		}
		return
	}

	var topo *graph.Topology
	defSrc, defDst := 0, 0
	switch *topoName {
	case "testbed":
		topo = experiments.TestbedTopology()
		defSrc, defDst = 3, 17
	case "chain":
		topo = graph.LossyChain(*nodes, 15, 30)
		defSrc, defDst = 0, *nodes-1
	case "diamond":
		topo = graph.Diamond()
		defSrc, defDst = 0, 2
	case "corridor":
		topo = graph.Corridor(*nodes, float64(*nodes)*26, 15, 28, *seed)
		defSrc, defDst = 0, *nodes-1
	case "grid":
		topo = graph.Grid(4, 5, 14, 30)
		defSrc, defDst = 0, topo.N()-1
	case "geometric":
		topo, _ = graph.ConnectedGeometric(gcfg, *seed)
		defSrc, defDst = -1, -1 // chosen after Degrade, below
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	if *drop > 0 {
		topo.Degrade(*drop)
	}
	if *src < 0 && defSrc >= 0 {
		*src = defSrc
	}
	if *dst < 0 && defDst >= 0 {
		*dst = defDst
	}
	if *src < 0 || *dst < 0 {
		// Geometric default endpoints: the first reachable random pair,
		// drawn on the (possibly degraded) topology actually being run.
		pairs := experiments.RandomPairs(topo, 1, *seed)
		if len(pairs) == 0 {
			fmt.Fprintln(os.Stderr, "no reachable flow pairs on this topology (too much -drop, or disconnected draw)")
			os.Exit(1)
		}
		if *src < 0 {
			*src = int(pairs[0].Src)
		}
		if *dst < 0 {
			*dst = int(pairs[0].Dst)
		}
	}

	pair := experiments.Pair{Src: graph.NodeID(*src), Dst: graph.NodeID(*dst)}
	if *verbose {
		s := topo.LinkStats(graph.RouteThreshold)
		fmt.Printf("topology: %d nodes, %d usable links, mean loss %.2f, mean degree %.1f\n",
			topo.N(), s.Links, s.MeanLoss, s.MeanDegree)
		if plan, err := routing.BuildPlan(topo, pair.Src, pair.Dst, planOpts(opts)); err == nil {
			fmt.Printf("plan %d->%d (%s order): cost %.2f\n", pair.Src, pair.Dst, opts.Metric, plan.TotalCost)
			for _, id := range plan.Participants() {
				fmt.Printf("  node %-3d dist=%-7.2f z=%-6.2f credit=%.2f\n",
					id, plan.Dist[id], plan.Z[id], plan.Credit[id])
			}
		}
		etx := routing.ETXToDestination(topo, pair.Dst, routing.DefaultETXOptions())
		fmt.Printf("best ETX path: %v (ETX %.2f)\n\n", etx.Path(pair.Src), etx.Dist[pair.Src])
	}

	if *protoName == "all" {
		if *showTrace || tc.active() {
			fmt.Fprintln(os.Stderr, "-trace and the telemetry flags are not supported with -proto all (one simulator per run; pick a protocol)")
			os.Exit(2)
		}
		if state == experiments.StateLearned {
			fmt.Fprintln(os.Stderr, "-proto all runs the oracle control plane; use -state learned with a single protocol")
			os.Exit(2)
		}
		if *flows > 1 {
			fmt.Fprintln(os.Stderr, "-proto all compares a single pair; use -flows with one protocol")
			os.Exit(2)
		}
		if !compareAll(topo, pair.Src, pair.Dst, opts) {
			os.Exit(1)
		}
		return
	}

	pairs := []experiments.Pair{pair}
	if *flows > 1 {
		if flagWasSet("src") || flagWasSet("dst") {
			fmt.Fprintln(os.Stderr, "-flows > 1 draws random pairs; it cannot be combined with -src/-dst")
			os.Exit(2)
		}
		pairs = experiments.RandomPairs(topo, *flows, *seed)
		if len(pairs) == 0 {
			fmt.Fprintln(os.Stderr, "no reachable flow pairs on this topology")
			os.Exit(1)
		}
	}

	if state == experiments.StateLearned {
		if *showTrace || tc.active() {
			fmt.Fprintln(os.Stderr, "-trace and the telemetry flags are not supported with -state learned (the gap report runs two simulations)")
			os.Exit(2)
		}
		if !runLearned(topo, proto, pairs, opts, *jsonOut) {
			os.Exit(1)
		}
		return
	}

	var hub *telemetry.Hub
	if tc.active() {
		hub = tc.newHub()
		opts.Telemetry = hub
	}
	var rec *trace.Recorder
	if *showTrace {
		// The recorder is an ordinary telemetry sink: alone it is the whole
		// plane, next to a hub it rides along as an extra consumer.
		rec = trace.NewRecorder(1 << 16)
		if hub != nil {
			hub.AddSink(rec)
		} else {
			opts.Telemetry = rec
		}
	}
	stopProgress := tc.startProgress(hub)
	info := experiments.RunDetailed(topo, proto, pairs, opts)
	stopProgress()
	rs, counters := info.Results, info.Counters
	if rec != nil {
		end := rs[0].End
		if end == 0 {
			end = sim.Second
		}
		fmt.Print(rec.Timeline(0, end, 96))
	}
	if hub != nil && !tc.finish(hub) {
		os.Exit(1)
	}
	if *jsonOut {
		out, _ := json.MarshalIndent(struct {
			Protocol  string
			Nodes     int
			CC        congest.Policy
			Results   []flow.Result
			Counters  sim.Counters
			CCStats   congest.Stats
			Fairness  experiments.FairnessReport
			Telemetry *telemetry.Report `json:",omitempty"`
		}{proto.String(), topo.N(), info.CC, rs, counters, info.CCStats, info.Fairness, info.Telemetry}, "", "  ")
		fmt.Println(string(out))
	} else {
		fmt.Printf("protocol: %v, cc: %v\n", proto, info.CC)
		for _, r := range rs {
			fmt.Printf("%s\n", r)
		}
		fmt.Printf("medium: %d data tx, %d MAC acks, %d collisions, %d channel losses, air time %v\n",
			counters.Transmissions, counters.MACAcks, counters.Collisions,
			counters.ChannelLosses, counters.AirTime)
		if len(rs) > 1 {
			fmt.Printf("fairness: Jain(throughput) %.3f, Jain(tx) %.3f, control tx %d\n",
				info.Fairness.JainThroughput, info.Fairness.JainTx, info.Fairness.ControlTx)
		}
		if info.CC != congest.None {
			st := info.CCStats
			fmt.Printf("congestion: %d enqueued, %d tail + %d choke + %d stale drops, %d grants, %d probes, %d rate cuts\n",
				st.Enqueued, st.TailDrops, st.ChokeDrops, st.StaleDrops, st.GrantTx, st.ProbeSends, st.RateDecreases)
		}
	}
	for _, r := range rs {
		if !r.Completed {
			os.Exit(1)
		}
	}
}

// runScenario loads, runs, and reports a declarative scenario. With
// jsonOut it emits the canonical result document (byte-identical across
// runs of the same spec — pipe it to cmd/scenariocheck to verify; the
// telemetry flags add an optional Telemetry block, everything else stays
// identical). It reports whether every flow met its schedule.
func runScenario(path string, jsonOut bool, tc telemetryCLI) bool {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var hub *telemetry.Hub
	if tc.active() {
		hub = tc.newHub()
	}
	stopProgress := tc.startProgress(hub)
	res, err := scenario.RunWith(spec, hub)
	stopProgress()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if hub != nil && !tc.finish(hub) {
		os.Exit(1)
	}
	if jsonOut {
		out, err := res.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return res.Done()
	}
	fmt.Printf("scenario: %s (%d nodes, seed %d, state %v, cc %v)\n",
		res.Scenario, res.Nodes, res.Seed, res.State, res.CC)
	if spec.Description != "" {
		fmt.Printf("  %s\n", spec.Description)
	}
	fmt.Printf("%-12s %-6s %-6s %6s %12s %10s %10s %6s\n",
		"flow", "proto", "model", "s->d", "delivered", "pkt/s", "tx", "done")
	for _, f := range res.Flows {
		fmt.Printf("%-12s %-6s %-6v %3d->%-3d %6d/%-6d %10.1f %10d %6v\n",
			f.Name, f.Protocol, f.Traffic, f.Result.Src, f.Result.Dst,
			f.Result.PacketsDelivered, f.Result.PacketsTotal,
			f.Result.Throughput(), f.Result.Transmissions, f.Done)
	}
	fmt.Printf("medium: %d data tx, %d collisions, %d channel losses, air time %v, run %v\n",
		res.Counters.Transmissions, res.Counters.Collisions,
		res.Counters.ChannelLosses, res.Counters.AirTime, res.End-res.Epoch)
	if len(res.Flows) > 1 {
		fmt.Printf("fairness: Jain(throughput) %.3f, Jain(tx) %.3f, control tx %d\n",
			res.Fairness.JainThroughput, res.Fairness.JainTx, res.Fairness.ControlTx)
	}
	if res.CC != congest.None {
		st := res.CCStats
		fmt.Printf("congestion: %d pushed, %d enqueued, %d tail + %d choke + %d stale drops, %d grants, %d probes\n",
			st.Pushed, st.Enqueued, st.TailDrops, st.ChokeDrops, st.StaleDrops, st.GrantTx, st.ProbeSends)
	}
	if res.State == experiments.StateLearned {
		fmt.Printf("measurement plane: converged at %v, %d probe tx, %d LSA tx\n",
			res.Convergence, res.ProbeTx, res.FloodTx)
	}
	fmt.Printf("digest: %s\n", res.Digest)
	return res.Done()
}

// runLearned runs the flows with routing state learned over the air (and
// once more from the oracle for comparison) and prints the gap report. It
// reports whether every learned-state flow completed.
func runLearned(topo *graph.Topology, proto experiments.Protocol, pairs []experiments.Pair,
	opts experiments.Options, jsonOut bool) bool {
	rep := experiments.GapRun(topo, proto, pairs, opts)
	if jsonOut {
		out, _ := json.MarshalIndent(struct {
			Nodes int
			Gap   experiments.GapReport
		}{topo.N(), rep}, "", "  ")
		fmt.Println(string(out))
	} else {
		fmt.Printf("protocol: %v, state: learned (vs oracle), %d flow(s)\n", proto, rep.Flows)
		fmt.Printf("%-10s %10s %12s %14s %8s\n", "state", "pkt/s", "tx/pkt", "data-tx/pkt", "done")
		fmt.Printf("%-10s %10.1f %12.2f %14.2f %5d/%-2d\n", "oracle",
			rep.Oracle.Throughput, rep.Oracle.TxPerPacket, rep.Oracle.DataTxPerPacket, rep.Oracle.Completed, rep.Flows)
		fmt.Printf("%-10s %10.1f %12.2f %14.2f %5d/%-2d\n", "learned",
			rep.Learned.Throughput, rep.Learned.TxPerPacket, rep.Learned.DataTxPerPacket, rep.Learned.Completed, rep.Flows)
		fmt.Printf("gap: throughput x%.2f, tx/pkt x%.2f (data-only x%.2f)\n",
			rep.ThroughputRatio, rep.TxPerPacketRatio, rep.DataTxPerPacketRatio)
		fmt.Printf("measurement plane: converged at %v, %d probe tx, %d LSA tx\n",
			rep.Convergence, rep.ProbeTx, rep.FloodTx)
	}
	return rep.Learned.Completed == rep.Flows
}

// runScale parses the node-count list, sweeps the scaling driver, and
// prints the table (or JSON). It reports whether every flow at every point
// completed.
func runScale(list string, flows int, drop float64, gcfg graph.GeometricConfig,
	proto experiments.Protocol, opts experiments.Options, jsonOut bool) bool {
	counts, ok := parseCounts(list)
	if !ok {
		os.Exit(2)
	}
	cfg := experiments.ScalingConfig{
		NodeCounts: counts,
		Flows:      flows,
		Drop:       drop,
		Geometric:  gcfg,
		Protocol:   proto,
		Opts:       opts,
	}
	points := experiments.ScalingSweep(cfg)
	ok = true
	if jsonOut {
		out, _ := json.MarshalIndent(points, "", "  ")
		fmt.Println(string(out))
		for _, pt := range points {
			ok = ok && pt.Completed == pt.Flows
		}
		return ok
	}
	learned := opts.State == experiments.StateLearned
	fmt.Printf("scaling sweep: proto=%v flows=%d drop=%.2f file=%dB degree=%.0f state=%v\n",
		proto, flows, drop, opts.FileBytes, gcfg.TargetDegree, opts.State)
	fmt.Printf("%8s %8s %10s %10s %10s %8s %12s", "nodes", "links", "deg", "pkt/s", "tx/pkt", "done", "wall")
	if learned {
		fmt.Printf(" %10s %10s %10s", "probe-tx", "flood-tx", "flood/node")
	}
	fmt.Println()
	for _, pt := range points {
		tpp := "-"
		if !math.IsNaN(pt.TxPerPacket) {
			tpp = fmt.Sprintf("%.2f", pt.TxPerPacket)
		}
		fmt.Printf("%8d %8d %10.1f %10.1f %10s %5d/%-2d %12v",
			pt.Nodes, pt.UsableLinks, pt.MeanDegree, pt.Throughput, tpp,
			pt.Completed, pt.Flows, pt.WallClock.Round(time.Millisecond))
		if learned {
			fmt.Printf(" %10d %10d %10.1f", pt.ProbeTx, pt.FloodTx, float64(pt.FloodTx)/float64(pt.Nodes))
		}
		fmt.Println()
		ok = ok && pt.Completed == pt.Flows
	}
	return ok
}

// runCCSweep re-runs the scaling sweep once per congestion policy over
// identical topologies and flows and prints the mitigation table (or
// JSON). It reports whether every flow at every point completed.
func runCCSweep(list string, flows int, drop float64, gcfg graph.GeometricConfig,
	proto experiments.Protocol, opts experiments.Options, jsonOut bool) bool {
	counts, ok := parseCounts(list)
	if !ok {
		os.Exit(2)
	}
	grid := experiments.CCSweep(experiments.CCSweepConfig{
		Scaling: experiments.ScalingConfig{
			NodeCounts: counts,
			Flows:      flows,
			Drop:       drop,
			Geometric:  gcfg,
			Protocol:   proto,
			Opts:       opts,
		},
	})
	allDone := true
	for _, pt := range grid {
		allDone = allDone && pt.Completed == pt.Flows
	}
	if jsonOut {
		out, _ := json.MarshalIndent(grid, "", "  ")
		fmt.Println(string(out))
		return allDone
	}
	fmt.Printf("congestion mitigation sweep: proto=%v flows=%d drop=%.2f file=%dB\n",
		proto, flows, drop, opts.FileBytes)
	fmt.Printf("%-8s %8s %10s %10s %8s %8s %8s %10s\n",
		"cc", "nodes", "pkt/s", "tx/pkt", "jainT", "done", "grants", "drops")
	for _, pt := range grid {
		tpp := "-"
		if !math.IsNaN(pt.TxPerPacket) {
			tpp = fmt.Sprintf("%.2f", pt.TxPerPacket)
		}
		drops := pt.CCStats.TailDrops + pt.CCStats.ChokeDrops + pt.CCStats.StaleDrops
		fmt.Printf("%-8v %8d %10.1f %10s %8.3f %5d/%-2d %8d %8d\n",
			pt.CC, pt.Nodes, pt.Throughput, tpp, pt.Fairness.JainThroughput,
			pt.Completed, pt.Flows, pt.CCStats.GrantTx, drops)
	}
	return allDone
}

// parseRings parses the -scope-rings hop-radius list: ascending positive
// integers.
func parseRings(list string) ([]int, bool) {
	var rings []int
	for _, part := range strings.Split(list, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 1 || r > 255 || (len(rings) > 0 && r <= rings[len(rings)-1]) {
			fmt.Fprintf(os.Stderr, "bad -scope-rings entry %q (want ascending radii 1..255)\n", part)
			return nil, false
		}
		rings = append(rings, r)
	}
	return rings, true
}

// parseCounts parses the -scale node-count list.
func parseCounts(list string) ([]int, bool) {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad -scale entry %q\n", part)
			return nil, false
		}
		counts = append(counts, n)
	}
	return counts, true
}

// compareAll runs every protocol over the same pair, fanning the hermetic
// per-protocol simulations out over opts.Parallel workers, and prints a
// comparison table. It reports whether every protocol completed the
// transfer.
func compareAll(topo *graph.Topology, src, dst graph.NodeID, opts experiments.Options) bool {
	protos := []experiments.Protocol{
		experiments.MORE, experiments.ExOR, experiments.Srcr, experiments.SrcrAutorate,
	}
	pair := experiments.Pair{Src: src, Dst: dst}
	results := make([]flow.Result, len(protos))
	counters := make([]sim.Counters, len(protos))
	experiments.ForEachItem(len(protos), opts.Parallel, func(i int) {
		o := opts
		if protos[i] == experiments.SrcrAutorate {
			o.RateDependentChannel = true
		}
		rs, cs := experiments.RunWithCounters(topo, protos[i], []experiments.Pair{pair}, o)
		results[i] = rs[0]
		counters[i] = cs
	})
	fmt.Printf("pair %d -> %d, %d B file:\n", src, dst, opts.FileBytes)
	fmt.Printf("%-14s %10s %10s %8s %12s\n", "proto", "pkt/s", "tx", "done", "air time")
	allDone := true
	for i, p := range protos {
		fmt.Printf("%-14v %10.1f %10d %8v %12v\n",
			p, results[i].Throughput(), counters[i].Transmissions,
			results[i].Completed, counters[i].AirTime)
		allDone = allDone && results[i].Completed
	}
	return allDone
}

// telemetryCLI groups the observability flag surface: where to write the
// metrics report and Chrome trace, the per-packet deadline, and the
// heartbeat period.
type telemetryCLI struct {
	metrics    string
	trace      string
	deadlineMS float64
	progressS  float64
}

// active reports whether any telemetry flag asks for a hub.
func (tc telemetryCLI) active() bool {
	return tc.metrics != "" || tc.trace != "" || tc.deadlineMS > 0 || tc.progressS > 0
}

// newHub builds the hub the flags describe. Stall dumps go to stderr as
// indented JSON the moment the watchdog fires — the post-mortem survives
// even if the process is killed before the run finishes.
func (tc telemetryCLI) newHub() *telemetry.Hub {
	return telemetry.NewHub(telemetry.Config{
		DeadlineNS:  int64(tc.deadlineMS * 1e6),
		ChromeTrace: tc.trace != "",
		OnStall: func(d telemetry.StallDump) {
			out, err := json.MarshalIndent(d, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "moresim: stall dump: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "moresim: %s at node %d (flow %d, batch %d, t=%v):\n%s\n",
				d.Reason, d.Node, d.Flow, d.Batch, sim.Time(d.At), out)
		},
	})
}

// startProgress launches the stderr heartbeat goroutine and returns its
// stop function. The hub's atomic counters are the only shared state, so
// reading them mid-run is safe; the simulated clock of the last event is
// the best liveness signal a single-threaded simulation can offer.
func (tc telemetryCLI) startProgress(hub *telemetry.Hub) func() {
	if tc.progressS <= 0 || hub == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Duration(tc.progressS * float64(time.Second)))
		defer tick.Stop()
		start := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "moresim: %v elapsed, %d events, sim clock %v\n",
					time.Since(start).Round(time.Second), hub.Events(), sim.Time(hub.LastAt()))
			}
		}
	}()
	return func() { close(stop); <-done }
}

// finish writes the artifacts the flags requested from a completed run.
func (tc telemetryCLI) finish(hub *telemetry.Hub) bool {
	ok := true
	if tc.metrics != "" {
		out, err := json.MarshalIndent(hub.Report(), "", "  ")
		if err == nil {
			out = append(out, '\n')
			if tc.metrics == "-" {
				_, err = os.Stdout.Write(out)
			} else {
				err = os.WriteFile(tc.metrics, out, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "-metrics: %v\n", err)
			ok = false
		}
	}
	if tc.trace != "" {
		f, err := os.Create(tc.trace)
		if err == nil {
			err = hub.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "-trace-out: %v\n", err)
			ok = false
		}
		if n := hub.Truncated(); n > 0 {
			fmt.Fprintf(os.Stderr, "moresim: chrome trace capped, %d events dropped\n", n)
		}
	}
	return ok
}

// flagWasSet reports whether the named flag was given on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func planOpts(o experiments.Options) routing.PlanOptions {
	p := routing.DefaultPlanOptions()
	p.Metric = o.Metric
	p.ETX = routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
	return p
}
