// Command moresim runs a single file transfer over a chosen topology and
// protocol and reports the result — the quick way to poke at the system.
//
//	moresim -proto more -topo testbed -src 3 -dst 17 -file 786432
//	moresim -proto exor -topo chain -nodes 6
//	moresim -proto srcr -topo diamond -verbose
//	moresim -proto all -parallel 4          # compare all four protocols
//
// With -proto all the four protocols run over the same pair on -parallel
// worker goroutines (each in its own simulator; per-protocol results are
// identical to serial runs) and a comparison table is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		protoName = flag.String("proto", "more", "protocol: more, exor, srcr, srcr-auto, or all (comparison)")
		parallel  = flag.Int("parallel", experiments.AutoParallel(), "worker goroutines for -proto all")
		topoName  = flag.String("topo", "testbed", "topology: testbed, chain, diamond, corridor, grid")
		nodes     = flag.Int("nodes", 6, "node count for chain/corridor topologies")
		src       = flag.Int("src", -1, "source node (default: topology-specific)")
		dst       = flag.Int("dst", -1, "destination node (default: topology-specific)")
		fileBytes = flag.Int("file", 512<<10, "transfer size in bytes")
		batch     = flag.Int("k", 32, "batch size K for MORE/ExOR")
		seed      = flag.Int64("seed", 1, "simulation seed")
		metric    = flag.String("metric", "etx", "forwarder ordering: etx or eotx")
		verbose   = flag.Bool("verbose", false, "print the forwarding plan")
		showTrace = flag.Bool("trace", false, "print a per-node medium activity timeline")
	)
	flag.Parse()

	var topo *graph.Topology
	defSrc, defDst := 0, 0
	switch *topoName {
	case "testbed":
		topo = experiments.TestbedTopology()
		defSrc, defDst = 3, 17
	case "chain":
		topo = graph.LossyChain(*nodes, 15, 30)
		defSrc, defDst = 0, *nodes-1
	case "diamond":
		topo = graph.Diamond()
		defSrc, defDst = 0, 2
	case "corridor":
		topo = graph.Corridor(*nodes, float64(*nodes)*26, 15, 28, *seed)
		defSrc, defDst = 0, *nodes-1
	case "grid":
		topo = graph.Grid(4, 5, 14, 30)
		defSrc, defDst = 0, topo.N()-1
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	if *src < 0 {
		*src = defSrc
	}
	if *dst < 0 {
		*dst = defDst
	}

	opts := experiments.DefaultOptions()
	opts.FileBytes = *fileBytes
	opts.BatchSize = *batch
	opts.Seed = *seed
	opts.Parallel = *parallel
	if *metric == "eotx" {
		opts.Metric = routing.OrderEOTX
	}

	var proto experiments.Protocol
	switch *protoName {
	case "all":
		// Handled after the verbose plan dump below.
	case "more":
		proto = experiments.MORE
	case "exor":
		proto = experiments.ExOR
	case "srcr":
		proto = experiments.Srcr
	case "srcr-auto":
		proto = experiments.SrcrAutorate
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		os.Exit(2)
	}
	if proto == experiments.SrcrAutorate {
		opts.RateDependentChannel = true
	}

	pair := experiments.Pair{Src: graph.NodeID(*src), Dst: graph.NodeID(*dst)}
	if *verbose {
		s := topo.LinkStats(graph.RouteThreshold)
		fmt.Printf("topology: %d nodes, %d usable links, mean loss %.2f\n",
			topo.N(), s.Links, s.MeanLoss)
		if plan, err := routing.BuildPlan(topo, pair.Src, pair.Dst, planOpts(opts)); err == nil {
			fmt.Printf("plan %d->%d (%s order): cost %.2f\n", pair.Src, pair.Dst, opts.Metric, plan.TotalCost)
			for _, id := range plan.Participants() {
				fmt.Printf("  node %-3d dist=%-7.2f z=%-6.2f credit=%.2f\n",
					id, plan.Dist[id], plan.Z[id], plan.Credit[id])
			}
		}
		etx := routing.ETXToDestination(topo, pair.Dst, routing.DefaultETXOptions())
		fmt.Printf("best ETX path: %v (ETX %.2f)\n\n", etx.Path(pair.Src), etx.Dist[pair.Src])
	}

	if *protoName == "all" {
		if *showTrace {
			fmt.Fprintln(os.Stderr, "-trace is not supported with -proto all (one timeline per run; pick a protocol)")
			os.Exit(2)
		}
		if !compareAll(topo, pair.Src, pair.Dst, opts) {
			os.Exit(1)
		}
		return
	}

	var rec *trace.Recorder
	if *showTrace {
		rec = trace.NewRecorder(1 << 16)
		opts.Trace = rec.Hook()
	}
	rs, counters := experiments.RunWithCounters(topo, proto, []experiments.Pair{pair}, opts)
	r := rs[0]
	if rec != nil {
		end := r.End
		if end == 0 {
			end = sim.Second
		}
		fmt.Print(rec.Timeline(0, end, 96))
	}
	fmt.Printf("protocol: %v\n", proto)
	fmt.Printf("%s\n", r)
	fmt.Printf("medium: %d data tx, %d MAC acks, %d collisions, %d channel losses, air time %v\n",
		counters.Transmissions, counters.MACAcks, counters.Collisions,
		counters.ChannelLosses, counters.AirTime)
	if !r.Completed {
		os.Exit(1)
	}
}

// compareAll runs every protocol over the same pair, fanning the hermetic
// per-protocol simulations out over opts.Parallel workers, and prints a
// comparison table. It reports whether every protocol completed the
// transfer.
func compareAll(topo *graph.Topology, src, dst graph.NodeID, opts experiments.Options) bool {
	protos := []experiments.Protocol{
		experiments.MORE, experiments.ExOR, experiments.Srcr, experiments.SrcrAutorate,
	}
	pair := experiments.Pair{Src: src, Dst: dst}
	results := make([]flow.Result, len(protos))
	counters := make([]sim.Counters, len(protos))
	experiments.ForEachItem(len(protos), opts.Parallel, func(i int) {
		o := opts
		if protos[i] == experiments.SrcrAutorate {
			o.RateDependentChannel = true
		}
		rs, cs := experiments.RunWithCounters(topo, protos[i], []experiments.Pair{pair}, o)
		results[i] = rs[0]
		counters[i] = cs
	})
	fmt.Printf("pair %d -> %d, %d B file:\n", src, dst, opts.FileBytes)
	fmt.Printf("%-14s %10s %10s %8s %12s\n", "proto", "pkt/s", "tx", "done", "air time")
	allDone := true
	for i, p := range protos {
		fmt.Printf("%-14v %10.1f %10d %8v %12v\n",
			p, results[i].Throughput(), counters[i].Transmissions,
			results[i].Completed, counters[i].AirTime)
		allDone = allDone && results[i].Completed
	}
	return allDone
}

func planOpts(o experiments.Options) routing.PlanOptions {
	p := routing.DefaultPlanOptions()
	p.Metric = o.Metric
	p.ETX = routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
	return p
}
