// Command scenariocheck validates scenario result documents against the
// schema: strict field checking, accounting invariants (per-flow
// transmission attribution must sum to the medium total), and the embedded
// digest recomputed over the canonical body. CI pipes `moresim -scenario
// … -json` output through it so a malformed or non-reproducible result
// fails the build rather than landing in a dashboard.
//
//	moresim -scenario scenarios/push-choke.json -json | scenariocheck
//	scenariocheck run1.json run2.json
//
// With multiple files the documents must also be byte-identical to each
// other — the quick reproducibility check (same spec, two runs, cmp).
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

func main() {
	inputs := os.Args[1:]
	if len(inputs) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fail("reading stdin: %v", err)
		}
		check("<stdin>", data)
		return
	}
	var first []byte
	for i, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		check(path, data)
		if i == 0 {
			first = data
		} else if !bytes.Equal(first, data) {
			fail("%s differs from %s: runs of one spec must be byte-identical", path, inputs[0])
		}
	}
}

func check(name string, data []byte) {
	res, err := scenario.ValidateResult(data)
	if err != nil {
		fail("%s: %v", name, err)
	}
	status := "done"
	if !res.Done() {
		status = "INCOMPLETE"
	}
	fmt.Printf("%s: ok — scenario %s, %d nodes, %d flows, %s, digest %s\n",
		name, res.Scenario, res.Nodes, len(res.Flows), status, res.Digest[:12])
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "scenariocheck: "+format+"\n", args...)
	os.Exit(1)
}
