// Package repro is a from-scratch Go reproduction of "Trading Structure for
// Randomness in Wireless Opportunistic Routing" (Chachulski, MIT M.S.
// thesis, 2007 — the thesis form of the SIGCOMM 2007 MORE paper).
//
// The system under internal/ comprises the MORE protocol (internal/core),
// its GF(2^8) random linear network coding (internal/gf256,
// internal/coding), the ETX/EOTX routing theory of Chapter 5
// (internal/routing), a deterministic discrete-event 802.11b simulator
// standing in for the paper's 20-node testbed (internal/sim,
// internal/graph), the ExOR and Srcr baselines (internal/exor,
// internal/srcr), link probing (internal/probe), and the experiment drivers
// that regenerate every table and figure of the evaluation
// (internal/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate each table and figure at reduced
// scale; cmd/morebench runs them at any scale.
package repro
