// Package repro is a from-scratch Go reproduction of "Trading Structure for
// Randomness in Wireless Opportunistic Routing" (Chachulski, MIT M.S.
// thesis, 2007 — the thesis form of the SIGCOMM 2007 MORE paper).
//
// The system under internal/ comprises the MORE protocol (internal/core),
// its GF(2^8) random linear network coding (internal/gf256,
// internal/coding), the ETX/EOTX routing theory of Chapter 5
// (internal/routing), a deterministic discrete-event 802.11b simulator
// standing in for the paper's 20-node testbed (internal/sim,
// internal/graph), the ExOR and Srcr baselines (internal/exor,
// internal/srcr), link probing (internal/probe), and the experiment drivers
// that regenerate every table and figure of the evaluation
// (internal/experiments).
//
// The coding data plane is built for throughput: internal/gf256 processes
// payloads eight bytes per uint64 via bit-plane decomposition and
// 4-bit-nibble subset tables (see kernel.go), internal/coding runs an
// allocation-free pooled packet pipeline in steady state, and the
// experiment drivers fan their independent simulation runs out over a
// bounded worker pool with per-item derived seeds, so every figure is
// byte-identical for any worker count. PERFORMANCE.md tracks the measured
// Table 4.1 numbers per PR.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate each table and figure at reduced
// scale; cmd/morebench runs them at any scale (-parallel for the worker
// pool, -json for machine-readable results).
package repro
