// Quickstart: build a simulated 20-node mesh, transfer a file with MORE,
// and print the throughput — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func main() {
	// The simulated analogue of the paper's 20-node, 3-floor testbed.
	topo := experiments.TestbedTopology()

	// The simulator: 802.11b at 5.5 Mb/s, CSMA/CA, lossy broadcast.
	simCfg := sim.DefaultConfig()
	simCfg.SenseRange = 84 // carrier sense covers the building
	simCfg.RefFrameBytes = 1500
	s := sim.New(topo, simCfg)

	// Every node runs MORE. The oracle plays the role of the paper's
	// pre-measured ETX link state, shared by all nodes.
	oracle := flow.NewOracle(topo, routing.ETXOptions{
		Threshold: graph.RouteThreshold, AckAware: true,
	})
	nodes := make([]*core.Node, topo.N())
	for i := range nodes {
		nodes[i] = core.NewNode(core.DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}

	// Transfer a 512 KB file from node 3 to node 17.
	file := flow.NewFile(512<<10, 1500, 42)
	src, dst := graph.NodeID(3), graph.NodeID(17)
	done := false
	nodes[dst].ExpectFlow(1, file, nil)
	if err := nodes[src].StartFlow(1, dst, file, func(flow.Result) { done = true }); err != nil {
		log.Fatal(err)
	}
	s.RunWhile(3600*sim.Second, func() bool { return !done })

	r := nodes[dst].Result(1)
	fmt.Println(r)
	fmt.Printf("verified: %v, network transmissions: %d (%.2f per packet)\n",
		r.Verified, s.Counters.Transmissions,
		float64(s.Counters.Transmissions)/float64(r.PacketsDelivered))
}
