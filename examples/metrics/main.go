// Metrics (Chapter 5): computes ETX and EOTX side by side, demonstrates the
// unbounded cost gap of Fig 5-1, and checks the §5.6.2 identity that the
// per-node transmission counts of Algorithm 1 under the EOTX order sum to
// the source's EOTX.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/routing"
)

func main() {
	// 1. The Fig 5-1 gap topology: ETX discards forwarder B, EOTX embraces
	// its k lossy-but-parallel branches.
	k, p := 8, 0.05
	topo := graph.GapTopology(k, p)
	src, dst := graph.NodeID(0), graph.NodeID(3+k)
	etx := routing.ETXToDestination(topo, dst, routing.ETXOptions{Threshold: 0, AckAware: false})
	eotx := routing.EOTX(topo, dst, routing.DefaultEOTXOptions())
	fmt.Printf("gap topology (k=%d, p=%.2f):\n", k, p)
	fmt.Printf("  ETX(src) = %.2f   EOTX(src) = %.2f\n", etx.Dist[src], eotx[src])
	gap, err := routing.CostGap(topo, src, dst,
		routing.ETXOptions{Threshold: 0, AckAware: false}, routing.DefaultEOTXOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ETX-ordered forwarding costs %.2fx the EOTX-ordered optimum\n", gap)
	fmt.Printf("  (Prop. 6: the ratio approaches k=%d as p -> 0)\n\n", k)

	// 2. §5.6.2: under the EOTX order, Algorithm 1's Σ z_i equals the
	// source's EOTX exactly.
	plan, err := routing.BuildPlan(topo, src, dst, routing.PlanOptions{
		Metric: routing.OrderEOTX,
		ETX:    routing.ETXOptions{Threshold: 0, AckAware: false},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ z_i under EOTX order = %.4f, EOTX(src) = %.4f (identical, §5.6.2)\n\n",
		plan.TotalCost, eotx[src])

	// 3. On a realistic mesh the two orders barely differ (§5.7).
	res := experiments.Sec57EOTXvsETX(experiments.TestbedTopology(), experiments.AutoParallel())
	fmt.Println("on the simulated 20-node testbed:")
	fmt.Print(res.Table())
	fmt.Println("\n(§5.7's conclusion: EOTX is the right baseline, but ETX ordering")
	fmt.Println(" costs almost nothing on real meshes — the contrived gap topology")
	fmt.Println(" needs many forwarders and extreme loss)")
}
