// Multicast: the extension the thesis motivates in Chapter 1 — ExOR's
// structured schedule is hard to extend to multicast, while MORE's random
// coding needs no per-receiver coordination: one coded broadcast can be
// innovative for many destinations at once. This example multicasts a file
// to three destinations and compares the transmission cost against three
// separate unicast transfers.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func main() {
	topo := experiments.TestbedTopology()
	file := flow.NewFile(128*1500, 1500, 9)
	// Destinations 5, 7, and 9 all hang off the same 3->6->14->17 artery,
	// so one coded broadcast along it serves all three.
	src := graph.NodeID(3)
	dsts := []graph.NodeID{5, 7, 9}

	newSim := func() (*sim.Simulator, []*core.Node) {
		simCfg := sim.DefaultConfig()
		simCfg.SenseRange = 84
		simCfg.RefFrameBytes = 1500
		s := sim.New(topo, simCfg)
		oracle := flow.NewOracle(topo, routing.ETXOptions{
			Threshold: graph.RouteThreshold, AckAware: true,
		})
		nodes := make([]*core.Node, topo.N())
		for i := range nodes {
			nodes[i] = core.NewNode(core.DefaultConfig(), oracle)
			s.Attach(graph.NodeID(i), nodes[i])
		}
		return s, nodes
	}

	// One multicast flow to all three destinations.
	s, nodes := newSim()
	for _, d := range dsts {
		nodes[d].ExpectFlow(1, file, nil)
	}
	done := false
	if err := nodes[src].StartMulticastFlow(1, dsts, file, func(flow.Result) { done = true }); err != nil {
		log.Fatal(err)
	}
	s.RunWhile(3600*sim.Second, func() bool { return !done })
	multicastTx := s.Counters.Transmissions
	fmt.Printf("multicast %d -> %v: %v simulated, %d transmissions\n",
		src, dsts, s.Now(), multicastTx)
	for _, d := range dsts {
		r := nodes[d].Result(1)
		fmt.Printf("  dst %d: %d/%d packets, verified=%v\n",
			d, r.PacketsDelivered, r.PacketsTotal, r.Verified)
	}

	// Baseline: three sequential unicasts of the same file.
	var unicastTx int64
	for i, d := range dsts {
		s2, nodes2 := newSim()
		done2 := false
		nodes2[d].ExpectFlow(flow.ID(10+i), file, nil)
		if err := nodes2[src].StartFlow(flow.ID(10+i), d, file, func(flow.Result) { done2 = true }); err != nil {
			log.Fatal(err)
		}
		s2.RunWhile(3600*sim.Second, func() bool { return !done2 })
		unicastTx += s2.Counters.Transmissions
	}
	fmt.Printf("\nthree separate unicasts: %d transmissions\n", unicastTx)
	fmt.Printf("multicast saves %.0f%% — one coded broadcast is innovative for\n",
		100*(1-float64(multicastTx)/float64(unicastTx)))
	fmt.Println("every destination that hears it, no per-receiver scheduling needed.")
}
