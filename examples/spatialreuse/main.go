// Spatial reuse (Fig 4-4): on a long corridor, a flow's first and last hop
// are outside each other's carrier-sense range and can transmit
// concurrently. MORE, running directly on 802.11, exploits this; ExOR's
// strict one-transmitter-at-a-time schedule cannot. This example finds such
// a flow and runs all three protocols over it.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/graph"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.FileBytes = 256 << 10

	// Hunt corridor draws for a qualifying pair: best path ≥ 4 hops with
	// the first-hop transmitter out of sense range of the last-hop one.
	var topo *graph.Topology
	var pair experiments.Pair
	found := false
	for seed := int64(1); seed < 60 && !found; seed++ {
		t := graph.Corridor(14, 360, 15, 28, seed)
		prs := experiments.SpatialReusePairs(t, 4, 0.01, opts.SenseRange)
		if len(prs) > 0 {
			topo, pair, found = t, prs[0], true
		}
	}
	if !found {
		fmt.Fprintln(os.Stderr, "no spatial-reuse pair found")
		os.Exit(1)
	}

	hops := topo.HopCount(pair.Src, pair.Dst, graph.RouteThreshold)
	fmt.Printf("corridor flow %d -> %d (%d hops); first and last hop can transmit concurrently\n\n",
		pair.Src, pair.Dst, hops)

	fmt.Printf("%-8s %12s %14s\n", "proto", "pkt/s", "tx (total)")
	var more, exor float64
	for _, proto := range []experiments.Protocol{experiments.Srcr, experiments.ExOR, experiments.MORE} {
		rs, counters := experiments.RunWithCounters(topo, proto, []experiments.Pair{pair}, opts)
		tput := rs[0].Throughput()
		fmt.Printf("%-8v %12.1f %14d\n", proto, tput, counters.Transmissions)
		switch proto {
		case experiments.MORE:
			more = tput
		case experiments.ExOR:
			exor = tput
		}
	}
	fmt.Printf("\nMORE over ExOR: %+.0f%% — the gain the paper attributes to spatial reuse\n",
		100*(more/exor-1))
	fmt.Println("(the schedule forces ExOR's distant hops to take turns; MORE's 802.11")
	fmt.Println(" broadcasts let them run in parallel)")
}
