// Filetransfer: two concurrent MORE flows crossing a lossy mesh, with
// byte-exact verification of the delivered files and a per-node accounting
// of where transmissions happened — the multi-flow machinery of §4.3 in
// miniature, plus the per-batch delivery callback for streaming consumers.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func main() {
	topo := experiments.TestbedTopology()
	simCfg := sim.DefaultConfig()
	simCfg.SenseRange = 84
	simCfg.RefFrameBytes = 1500
	s := sim.New(topo, simCfg)

	oracle := flow.NewOracle(topo, routing.ETXOptions{
		Threshold: graph.RouteThreshold, AckAware: true,
	})
	nodes := make([]*core.Node, topo.N())
	for i := range nodes {
		nodes[i] = core.NewNode(core.DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}

	type transfer struct {
		id       flow.ID
		src, dst graph.NodeID
		file     flow.File
	}
	transfers := []transfer{
		{1, 3, 17, flow.NewFile(256<<10, 1500, 11)},
		{2, 19, 2, flow.NewFile(256<<10, 1500, 22)},
	}

	remaining := len(transfers)
	for _, tr := range transfers {
		tr := tr
		// Stream batches to the "application" as they decode.
		nodes[tr.dst].OnDeliver = func(id flow.ID, batch uint32, natives [][]byte) {
			if batch == 0 {
				fmt.Printf("  [%v] flow %d: first batch decoded at node %d (%d packets)\n",
					s.Now(), id, tr.dst, len(natives))
			}
		}
		nodes[tr.dst].ExpectFlow(tr.id, tr.file, nil)
		if err := nodes[tr.src].StartFlow(tr.id, tr.dst, tr.file, func(flow.Result) {
			remaining--
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("running %d concurrent MORE flows over the testbed...\n", len(transfers))
	s.RunWhile(3600*sim.Second, func() bool { return remaining > 0 })

	fmt.Println("\nresults:")
	for _, tr := range transfers {
		r := nodes[tr.dst].Result(tr.id)
		status := "FAILED VERIFICATION"
		if r.Verified && r.Completed {
			status = "byte-exact"
		}
		fmt.Printf("  flow %d (%d->%d): %.1f pkt/s, %s\n",
			tr.id, tr.src, tr.dst, r.Throughput(), status)
	}

	fmt.Println("\nper-node data transmissions (who carried the traffic):")
	for i, tx := range s.Counters.TxByNode {
		if tx > 0 {
			fmt.Printf("  node %-3d %6d\n", i, tx)
		}
	}
	fmt.Printf("total air time: %v over %v simulated\n", s.Counters.AirTime, s.Now())
}
