// Probing: the full measurement-to-routing pipeline of §4.1.2. Instead of
// feeding the protocols the simulator's ground-truth loss matrix, this
// example first runs the ETX probing campaign (periodic broadcast probes,
// windowed delivery-ratio estimation), builds the link-state oracle from the
// *estimated* matrix, and then transfers a file with MORE — exactly how the
// paper ran: "we run the ETX measurement module for 10 minutes... these
// measurements are then fed to all three protocols."
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/probe"
	"repro/internal/routing"
	"repro/internal/sim"
)

func main() {
	truth := experiments.TestbedTopology()
	simCfg := sim.DefaultConfig()
	simCfg.SenseRange = 84
	simCfg.RefFrameBytes = 1500

	// Phase 1: the probing campaign (padded to data size, as Roofnet does,
	// so the estimates reflect 1500 B frame loss).
	fmt.Println("phase 1: probing campaign (60 simulated seconds)...")
	probeCfg := probe.DefaultConfig()
	probeCfg.Window = 30
	est := probe.Measure(truth, probeCfg, simCfg, 60*sim.Second)
	meanErr, maxErr := probe.MatrixError(truth, est, graph.RouteThreshold)
	fmt.Printf("  estimated delivery matrix: mean error %.3f, max %.3f vs ground truth\n\n",
		meanErr, maxErr)

	// Phase 2: run MORE with routing state derived from the estimates —
	// while the channel itself still follows the ground truth.
	fmt.Println("phase 2: MORE transfer planned from estimated link state...")
	s := sim.New(truth, simCfg)
	oracle := flow.NewOracle(est, routing.ETXOptions{
		Threshold: graph.RouteThreshold, AckAware: true,
	})
	nodes := make([]*core.Node, truth.N())
	for i := range nodes {
		nodes[i] = core.NewNode(core.DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	file := flow.NewFile(256<<10, 1500, 13)
	src, dst := graph.NodeID(3), graph.NodeID(17)
	done := false
	nodes[dst].ExpectFlow(1, file, nil)
	if err := nodes[src].StartFlow(1, dst, file, func(flow.Result) { done = true }); err != nil {
		log.Fatal(err)
	}
	s.RunWhile(3600*sim.Second, func() bool { return !done })
	r := nodes[dst].Result(1)
	fmt.Printf("  %s\n\n", r)

	// Reference: the same transfer planned from ground truth.
	res := experiments.Run(truth, experiments.MORE,
		experiments.Pair{Src: src, Dst: dst}, func() experiments.Options {
			o := experiments.DefaultOptions()
			o.FileBytes = 256 << 10
			o.Seed = 13
			return o
		}())
	fmt.Printf("reference (ground-truth planning): %.1f pkt/s\n", res.Throughput())
	fmt.Printf("estimation cost: %.0f%% — probe-based ETX is good enough, as deployed\n",
		100*(1-r.Throughput()/res.Throughput()))
}
