// Motivating example (Fig 1-1 of the thesis): a source, a relay R, and a
// destination that overhears about half the source's transmissions
// directly. Without coding, R cannot know which packets the destination
// already has and wastes transmissions; with random network coding, every
// packet R sends is useful regardless. The example runs both MORE and
// traditional best-path routing on the diamond and shows the relay's
// transmission count dropping to roughly the overheard complement.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func main() {
	// src(0) --0.95--> R(1) --0.95--> dst(2), with a 0.49 overhear link
	// src -> dst, as in Fig 1-1.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.95)
	topo.SetLink(1, 2, 0.95)
	topo.SetLink(0, 2, 0.49)

	fmt.Println("Fig 1-1 diamond: dst overhears ~49% of src's packets directly.")
	fmt.Println()

	// Theory: Algorithm 1 says R only needs to forward the complement.
	plan, err := routing.BuildPlan(topo, 0, 2, routing.PlanOptions{
		Metric: routing.OrderETX,
		ETX:    routing.ETXOptions{Threshold: 0.1, AckAware: false},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1: z(src)=%.2f, z(R)=%.2f  (R forwards only what dst missed)\n\n",
		plan.Z[0], plan.Z[1])

	// Practice: run MORE and count per-node transmissions.
	file := flow.NewFile(128*1500, 1500, 7)
	simCfg := sim.DefaultConfig()
	simCfg.RefFrameBytes = 1500
	s := sim.New(topo, simCfg)
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.1, AckAware: true})
	nodes := make([]*core.Node, 3)
	for i := range nodes {
		nodes[i] = core.NewNode(core.DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	done := false
	nodes[2].ExpectFlow(1, file, nil)
	if err := nodes[0].StartFlow(1, 2, file, func(flow.Result) { done = true }); err != nil {
		log.Fatal(err)
	}
	s.RunWhile(600*sim.Second, func() bool { return !done })
	r := nodes[2].Result(1)
	fmt.Printf("MORE: %s\n", r)
	fmt.Printf("  src transmitted %d coded packets, R only %d (%.0f%% of src)\n",
		s.Counters.TxByNode[0], s.Counters.TxByNode[1],
		100*float64(s.Counters.TxByNode[1])/float64(s.Counters.TxByNode[0]))
	fmt.Printf("  R never had to learn WHICH packets dst overheard: random\n")
	fmt.Printf("  combinations are useful with probability ≈ 255/256.\n\n")

	// Baseline: traditional routing sends everything through R.
	res := experiments.Run(topo, experiments.Srcr, experiments.Pair{Src: 0, Dst: 2},
		experiments.Options{
			FileBytes: 128 * 1500, PktSize: 1500, BatchSize: 32,
			DataRate: sim.Rate5_5, Seed: 7, Deadline: 600 * sim.Second,
			PreCoding: true, InnovativeOnly: true, PruneFraction: 0.1,
		})
	fmt.Printf("Srcr (best path, no opportunism): %.1f pkt/s vs MORE %.1f pkt/s (%.2fx)\n",
		res.Throughput(), r.Throughput(), r.Throughput()/res.Throughput())
}
