// Benchmarks regenerating every table and figure of the thesis' evaluation,
// one benchmark per artifact, at a scale that keeps `go test -bench=.`
// tractable. Reported custom metrics carry the figures' headline numbers
// (median pkt/s per protocol, gains, gaps); cmd/morebench prints the full
// tables at arbitrary scale. Absolute throughputs are simulator-relative;
// the paper-vs-measured comparison lives in EXPERIMENTS.md.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/coding"
	"repro/internal/experiments"
	"repro/internal/routing"
	"repro/internal/stats"
)

// benchOpts is the reduced workload shared by the throughput benches.
func benchOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.FileBytes = 96 * 1500
	return o
}

// BenchmarkFig42UnicastThroughput regenerates the Fig 4-2 comparison:
// median unicast throughput of MORE, ExOR, and Srcr over random pairs.
func BenchmarkFig42UnicastThroughput(b *testing.B) {
	topo := experiments.TestbedTopology()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig42UnicastThroughput(topo, 10, benchOpts())
		b.ReportMetric(stats.Median(res.Throughput[experiments.MORE]), "MORE-pkt/s")
		b.ReportMetric(stats.Median(res.Throughput[experiments.ExOR]), "ExOR-pkt/s")
		b.ReportMetric(stats.Median(res.Throughput[experiments.Srcr]), "Srcr-pkt/s")
		b.ReportMetric(res.MedianGain(experiments.MORE, experiments.ExOR), "gain-vs-ExOR-%")
		b.ReportMetric(res.MedianGain(experiments.MORE, experiments.Srcr), "gain-vs-Srcr-%")
	}
}

// BenchmarkFig43Scatter regenerates Fig 4-3's observation: the median gain
// over Srcr among challenged flows vs good flows.
func BenchmarkFig43Scatter(b *testing.B) {
	topo := experiments.TestbedTopology()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig42UnicastThroughput(topo, 10, benchOpts())
		bottom, top := res.ChallengedGain(experiments.MORE)
		b.ReportMetric(bottom, "challenged-gain-x")
		b.ReportMetric(top, "good-flow-gain-x")
	}
}

// BenchmarkFig44SpatialReuse regenerates Fig 4-4: MORE vs ExOR on >=4-hop
// flows whose first and last hop can transmit concurrently.
func BenchmarkFig44SpatialReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig44SpatialReuse(4, benchOpts())
		b.ReportMetric(res.MedianGain(experiments.MORE, experiments.ExOR), "gain-vs-ExOR-%")
		b.ReportMetric(stats.Median(res.Throughput[experiments.MORE]), "MORE-pkt/s")
		b.ReportMetric(stats.Median(res.Throughput[experiments.ExOR]), "ExOR-pkt/s")
	}
}

// BenchmarkFig45MultiFlow regenerates Fig 4-5: average per-flow throughput
// with 1..3 concurrent flows.
func BenchmarkFig45MultiFlow(b *testing.B) {
	topo := experiments.TestbedTopology()
	o := benchOpts()
	o.FileBytes = 64 * 1500
	for i := 0; i < b.N; i++ {
		res := experiments.Fig45MultiFlow(topo, 3, 2, o)
		b.ReportMetric(res.Avg[experiments.MORE][0], "MORE-1flow-pkt/s")
		b.ReportMetric(res.Avg[experiments.MORE][2], "MORE-3flows-pkt/s")
		b.ReportMetric(res.Avg[experiments.Srcr][2], "Srcr-3flows-pkt/s")
	}
}

// BenchmarkFig46Autorate regenerates Fig 4-6: Srcr with Onoe autorate vs
// opportunistic routing at a fixed 11 Mb/s over a rate-dependent channel.
func BenchmarkFig46Autorate(b *testing.B) {
	topo := experiments.TestbedTopology()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig46Autorate(topo, 6, benchOpts())
		b.ReportMetric(stats.Median(res.Throughput["MORE@11"]), "MORE@11-pkt/s")
		b.ReportMetric(stats.Median(res.Throughput["Srcr-auto"]), "Srcr-auto-pkt/s")
		b.ReportMetric(100*res.LowRateTxFrac, "1Mbps-tx-%")
		b.ReportMetric(100*res.LowRateAirFrac, "1Mbps-airtime-%")
	}
}

// BenchmarkFig47BatchSize regenerates Fig 4-7: throughput sensitivity to
// the batch size K for MORE and ExOR.
func BenchmarkFig47BatchSize(b *testing.B) {
	topo := experiments.TestbedTopology()
	o := benchOpts()
	o.FileBytes = 128 * 1500
	for i := 0; i < b.N; i++ {
		res := experiments.Fig47BatchSize(topo, []int{8, 32, 128}, 4, o)
		b.ReportMetric(res.Sensitivity(res.MORE), "MORE-sensitivity-x")
		b.ReportMetric(res.Sensitivity(res.ExOR), "ExOR-sensitivity-x")
	}
}

// --- Table 4.1: the three packet operations, measured directly ---------------
//
// All three benchmarks run the pooled steady-state pipeline and report
// allocations: 0 allocs/op is part of the contract (the pipeline must not
// allocate per packet once warm).

func table41Fixture(b *testing.B) (*coding.Source, *coding.Pool) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	natives := make([][]byte, 32)
	for i := range natives {
		natives[i] = make([]byte, 1500)
		rng.Read(natives[i])
	}
	src, err := coding.NewSource(natives, rng)
	if err != nil {
		b.Fatal(err)
	}
	pool := coding.NewPool(32, 1500)
	src.UsePool(pool)
	return src, pool
}

// BenchmarkTable41IndependenceCheck measures the row-echelon innovativeness
// check against a full K=32 buffer (paper: 10 µs on a Celeron 800).
func BenchmarkTable41IndependenceCheck(b *testing.B) {
	src, pool := table41Fixture(b)
	buf := coding.NewBuffer(32, 1500)
	buf.UsePool(pool)
	for !buf.Full() {
		buf.Add(src.Next())
	}
	vectors := make([][]byte, 256)
	for i := range vectors {
		p := src.Next()
		vectors[i] = append([]byte(nil), p.Vector...)
		pool.Put(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Innovative(vectors[i%len(vectors)])
	}
}

// BenchmarkTable41SourceCoding measures coding one packet at the source:
// K=32 multiplications per payload byte (paper: 270 µs).
func BenchmarkTable41SourceCoding(b *testing.B) {
	src, pool := table41Fixture(b)
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Put(src.Next())
	}
}

// BenchmarkTable41Decoding measures per-packet decode cost: the per-packet
// innovativeness elimination plus the amortized matrix inversion and batched
// native recovery (paper: 260 µs).
func BenchmarkTable41Decoding(b *testing.B) {
	src, pool := table41Fixture(b)
	pkts := make([]*coding.Packet, 40)
	for i := range pkts {
		pkts[i] = src.Next()
	}
	dec := coding.NewDecoder(32, 1500)
	dec.UsePool(pool)
	b.SetBytes(1500)
	b.ReportAllocs()
	b.ResetTimer()
	decoded := 0
	for decoded < b.N {
		dec.Reset()
		for i := 0; !dec.Complete() && i < len(pkts); i++ {
			q := pool.Get()
			q.CopyFrom(pkts[i])
			dec.Add(q)
		}
		if dec.Complete() {
			if _, err := dec.Decode(); err != nil {
				b.Fatal(err)
			}
		}
		decoded += 32
	}
}

// --- Chapter 5 ---------------------------------------------------------------

// BenchmarkFig51CostGap regenerates the Fig 5-1 curve: the ETX-vs-EOTX
// cost-gap at k=8 as the link probability falls.
func BenchmarkFig51CostGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig51CostGap(8, []float64{0.3, 0.1, 0.03, 0.01})
		b.ReportMetric(pts[len(pts)-1].Gap, "gap-at-p0.01-x")
	}
}

// BenchmarkSec57EOTXvsETX regenerates the §5.7 testbed statistics.
func BenchmarkSec57EOTXvsETX(b *testing.B) {
	topo := experiments.TestbedTopology()
	for i := 0; i < b.N; i++ {
		res := experiments.Sec57EOTXvsETX(topo, 1)
		b.ReportMetric(100*float64(res.Unaffected)/float64(res.Pairs), "unaffected-%")
		b.ReportMetric(res.MedianAffectedGapPct, "median-gap-%")
	}
}

// BenchmarkEOTXComputation measures the Algorithm 5 metric computation
// itself on the 20-node testbed (the O(n^2) claim of §5.5).
func BenchmarkEOTXComputation(b *testing.B) {
	topo := experiments.TestbedTopology()
	for i := 0; i < b.N; i++ {
		routing.EOTX(topo, 0, routing.DefaultEOTXOptions())
	}
}

// --- Ablations of MORE's design choices (DESIGN.md §5) ------------------------

func ablationPair() (opts experiments.Options, pair experiments.Pair) {
	opts = benchOpts()
	topo := experiments.TestbedTopology()
	pair = experiments.RandomPairs(topo, 4, 2)[3] // a multi-hop pair
	return opts, pair
}

func runAblation(b *testing.B, mutate func(*experiments.Options)) {
	topo := experiments.TestbedTopology()
	opts, pair := ablationPair()
	base := experiments.Run(topo, experiments.MORE, pair, opts)
	mutate(&opts)
	ablated := experiments.Run(topo, experiments.MORE, pair, opts)
	b.ReportMetric(base.Throughput(), "baseline-pkt/s")
	b.ReportMetric(ablated.Throughput(), "ablated-pkt/s")
	if ablated.Throughput() > 0 {
		b.ReportMetric(base.Throughput()/ablated.Throughput(), "speedup-x")
	}
}

// BenchmarkAblationPreCoding disables §3.2.3(c) pre-coding.
func BenchmarkAblationPreCoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblation(b, func(o *experiments.Options) { o.PreCoding = false })
	}
}

// BenchmarkAblationInnovativeOnly disables §3.2.3(a) innovative-only
// buffering (forwarders code over every reception).
func BenchmarkAblationInnovativeOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblation(b, func(o *experiments.Options) { o.InnovativeOnly = false })
	}
}

// BenchmarkAblationPruning disables §3.2.1 forwarder pruning.
func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblation(b, func(o *experiments.Options) { o.PruneFraction = 0 })
	}
}

// BenchmarkAblationEOTXOrder switches the forwarder ordering from ETX to
// the optimal EOTX metric (§5.7).
func BenchmarkAblationEOTXOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblation(b, func(o *experiments.Options) { o.Metric = routing.OrderEOTX })
	}
}

// BenchmarkAblationCrediting credits only innovative upstream receptions
// instead of every upstream reception (Eq. 3.3's assumption).
func BenchmarkAblationCrediting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblation(b, func(o *experiments.Options) { o.CreditOnInnovativeOnly = true })
	}
}
